//! Register (flip-flop) minimization: the paper leaves FF minimization to
//! retiming; this example runs the exact Leiserson–Saxe OPT solver after
//! mapping and shows the register savings, plus the DOT export for
//! inspecting the small results.
//!
//! Run with `cargo run --release --example minimum_registers`.

use turbosyn::{turbosyn, MapOptions};
use turbosyn_netlist::{dot, gen};
use turbosyn_retime::{clock_period, min_register_retiming};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = gen::fsm(gen::FsmConfig {
        state_bits: 3,
        inputs: 4,
        outputs: 2,
        depth: 5,
        seed: 2026,
    });

    // Map with TurboSYN, once plain and once with the exact min-register
    // post-pass enabled.
    let plain = turbosyn(&circuit, &MapOptions::default())?;
    let minimized = turbosyn(
        &circuit,
        &MapOptions {
            minimize_registers: true,
            ..MapOptions::default()
        },
    )?;
    println!(
        "TurboSYN Φ = {} ({} LUTs); registers: {} plain -> {} minimized (same period {})",
        plain.phi,
        plain.lut_count,
        plain.register_count,
        minimized.register_count,
        minimized.clock_period
    );
    assert_eq!(plain.clock_period, minimized.clock_period);

    // The solver also works standalone on any circuit at any feasible
    // period.
    let period = clock_period(&plain.final_circuit);
    if let Some(opt) = min_register_retiming(&plain.final_circuit, period) {
        println!(
            "standalone OPT at period {period}: {} -> {} edge registers",
            plain.final_circuit.register_count(),
            opt.circuit.register_count()
        );
    }

    // Inspect the mapped core visually (pipe to `dot -Tsvg`).
    let graph = dot::to_dot(&minimized.mapped);
    println!(
        "\nDOT export of the mapped circuit ({} lines) — first lines:",
        graph.lines().count()
    );
    for line in graph.lines().take(6) {
        println!("  {line}");
    }
    Ok(())
}
