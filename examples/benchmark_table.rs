//! Reproduce a slice of the paper's Table 1 interactively: run
//! FlowSYN-s, TurboMap and TurboSYN on a few benchmark-suite circuits and
//! print the clock-period (Φ) comparison.
//!
//! Run with `cargo run --release --example benchmark_table` — the full
//! 16-row table is produced by `cargo run --release -p turbosyn-bench
//! --bin exp_table1`.

use turbosyn::{flowsyn_s, turbomap, turbosyn, MapOptions};
use turbosyn_netlist::gen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = MapOptions::default(); // K = 5, as in the paper
    println!(
        "{:10} {:>6} {:>4} | {:>10} {:>10} {:>10}",
        "circuit", "gates", "FFs", "FlowSYN-s", "TurboMap", "TurboSYN"
    );
    let mut ratios = Vec::new();
    for bench in gen::suite().into_iter().take(4) {
        let c = &bench.circuit;
        let fs = flowsyn_s(c, &opts)?;
        let tm = turbomap(c, &opts)?;
        let ts = turbosyn(c, &opts)?;
        println!(
            "{:10} {:>6} {:>4} | {:>10} {:>10} {:>10}",
            bench.name,
            c.gate_count(),
            c.register_count_shared(),
            fs.phi,
            tm.phi,
            ts.phi
        );
        ratios.push(tm.phi as f64 / ts.phi as f64);
    }
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    println!("\nTurboMap / TurboSYN clock-period ratio (geomean): {geomean:.2}x");
    println!("(the paper reports 1.96x over its full benchmark set)");
    Ok(())
}
